"""Differentiable 2-D convolution and pooling via im2col.

All operators use NCHW layout, matching the paper's PyTorch models.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.tensor import Function, Tensor
from repro.errors import ShapeError


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Extract sliding patches: (N, C, H, W) -> (N, out_h*out_w, C*kh*kw)."""
    n, c, h, w = x.shape
    out_h = _out_size(h, kh, stride, padding)
    out_w = _out_size(w, kw, stride, padding)
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"convolution output would be empty for input {x.shape}, "
            f"kernel ({kh},{kw}), stride {stride}, padding {padding}"
        )
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(strides[0], strides[1], strides[2] * stride, strides[3] * stride, strides[2], strides[3]),
        writeable=False,
    )
    # -> (N, out_h*out_w, C*kh*kw).  The reshape of the transposed strided
    # view cannot be a view, so it already materialises a contiguous copy.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h * out_w, c * kh * kw)
    return cols, out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Scatter-add patches back: inverse of :func:`_im2col` for gradients.

    Delegates to the active backend (the pooling backwards route through
    here too, so every col2im in the model picks up backend acceleration).
    """
    from repro.backend import current_backend

    return current_backend().im2col_backward(
        cols, x_shape, kh, kw, stride, padding, out_h, out_w
    )


class Conv2dFunction(Function):
    """2-D cross-correlation with optional bias (like torch.nn.functional.conv2d)."""

    def forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
    ) -> np.ndarray:
        out_c, in_c, kh, kw = weight.shape
        if x.shape[1] != in_c:
            raise ShapeError(
                f"conv2d input has {x.shape[1]} channels but weight expects {in_c}"
            )
        from repro.backend import current_backend

        cols, out_h, out_w = _im2col(x, kh, kw, stride, padding)
        w_mat = weight.reshape(out_c, -1)
        out = current_backend().conv_cols_matmul(cols, w_mat)  # (N, out_h*out_w, out_c)
        if bias is not None:
            out = out + bias
        out = out.transpose(0, 2, 1).reshape(x.shape[0], out_c, out_h, out_w)
        self.save_for_backward(cols, x.shape, weight, bias is not None, stride, padding, out_h, out_w)
        return out

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        from repro.backend import current_backend

        cols, x_shape, weight, has_bias, stride, padding, out_h, out_w = self.saved
        n = x_shape[0]
        out_c, in_c, kh, kw = weight.shape
        grad_mat = grad.reshape(n, out_c, out_h * out_w).transpose(0, 2, 1)  # (N, L, out_c)
        w_mat = weight.reshape(out_c, -1)

        grad_cols, grad_w = current_backend().conv_grads(
            grad_mat, cols, w_mat, weight.shape
        )
        grad_x = _col2im(grad_cols, x_shape, kh, kw, stride, padding, out_h, out_w)
        if has_bias:
            return grad_x, grad_w, grad_mat.sum(axis=(0, 1))
        return grad_x, grad_w


class MaxPool2dFunction(Function):
    def forward(self, x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
        n, c, h, w = x.shape
        out_h = _out_size(h, kernel, stride, 0)
        out_w = _out_size(w, kernel, stride, 0)
        cols, _, _ = _im2col(x, kernel, kernel, stride, 0)
        cols = cols.reshape(n, out_h * out_w, c, kernel * kernel)
        argmax = cols.argmax(axis=3)
        out = np.take_along_axis(cols, argmax[..., None], axis=3)[..., 0]
        out = out.transpose(0, 2, 1).reshape(n, c, out_h, out_w)
        self.save_for_backward(x.shape, argmax, kernel, stride, out_h, out_w)
        return out

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        x_shape, argmax, kernel, stride, out_h, out_w = self.saved
        n, c, _, _ = x_shape
        grad_flat = grad.reshape(n, c, out_h * out_w).transpose(0, 2, 1)  # (N, L, C)
        grad_cols = np.zeros((n, out_h * out_w, c, kernel * kernel), dtype=grad.dtype)
        np.put_along_axis(grad_cols, argmax[..., None], grad_flat[..., None], axis=3)
        grad_cols = grad_cols.reshape(n, out_h * out_w, c * kernel * kernel)
        grad_x = _col2im(grad_cols, x_shape, kernel, kernel, stride, 0, out_h, out_w)
        return (grad_x,)


class AvgPool2dFunction(Function):
    def forward(self, x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
        n, c, h, w = x.shape
        out_h = _out_size(h, kernel, stride, 0)
        out_w = _out_size(w, kernel, stride, 0)
        cols, _, _ = _im2col(x, kernel, kernel, stride, 0)
        cols = cols.reshape(n, out_h * out_w, c, kernel * kernel)
        out = cols.mean(axis=3).transpose(0, 2, 1).reshape(n, c, out_h, out_w)
        self.save_for_backward(x.shape, kernel, stride, out_h, out_w)
        return out

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        x_shape, kernel, stride, out_h, out_w = self.saved
        n, c, _, _ = x_shape
        grad_flat = grad.reshape(n, c, out_h * out_w).transpose(0, 2, 1)
        # Broadcast the per-window mean gradient across the kernel axis; the
        # reshape materialises the stride-0 view exactly once.
        scaled = grad_flat[..., None] / (kernel * kernel)
        grad_cols = np.broadcast_to(
            scaled, (n, out_h * out_w, c, kernel * kernel)
        ).reshape(n, out_h * out_w, c * kernel * kernel)
        grad_x = _col2im(grad_cols, x_shape, kernel, kernel, stride, 0, out_h, out_w)
        return (grad_x,)


class Pad2dFunction(Function):
    def forward(self, x: np.ndarray, padding: int) -> np.ndarray:
        self.save_for_backward(padding)
        return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        (padding,) = self.saved
        if padding == 0:
            return (grad,)
        return (grad[:, :, padding:-padding, padding:-padding],)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over an NCHW input tensor."""
    if bias is None:
        return Conv2dFunction.apply(x, weight, None, stride, padding)
    return Conv2dFunction.apply(x, weight, bias, stride, padding)


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling with square windows."""
    return MaxPool2dFunction.apply(x, kernel=kernel, stride=stride or kernel)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling with square windows."""
    return AvgPool2dFunction.apply(x, kernel=kernel, stride=stride or kernel)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, producing (N, C)."""
    return x.mean(axis=(2, 3))


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two spatial dimensions symmetrically."""
    return Pad2dFunction.apply(x, padding=padding)
