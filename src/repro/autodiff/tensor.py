"""Core tensor type and reverse-mode gradient tape.

The design follows the classic define-by-run pattern: every differentiable
operation is a :class:`Function` whose ``apply`` records itself as the
creator of its output tensor.  Calling :meth:`Tensor.backward` performs a
topological sort of the creator graph and accumulates gradients.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GradientError, ShapeError

DEFAULT_DTYPE = np.float32

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the gradient tape."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient-tape recording (like torch.no_grad)."""
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Function:
    """Base class for differentiable operations.

    Subclasses implement :meth:`forward` (producing a raw ndarray) and
    :meth:`backward` (mapping the output gradient to input gradients, in
    the same order as the forward inputs; ``None`` marks non-differentiable
    inputs).
    """

    def __init__(self) -> None:
        self.inputs: Tuple["Tensor", ...] = ()
        self.saved: Tuple[Any, ...] = ()

    def save_for_backward(self, *items: Any) -> None:
        self.saved = items

    def forward(self, *args: Any, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> "Tensor":
        ctx = cls()
        tensor_inputs = tuple(a for a in args if isinstance(a, Tensor))
        raw_args = tuple(a.data if isinstance(a, Tensor) else a for a in args)
        out_data = ctx.forward(*raw_args, **kwargs)
        requires = is_grad_enabled() and any(t.requires_grad for t in tensor_inputs)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            ctx.inputs = tensor_inputs
            out._creator = ctx
        return out


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless it already has a
        floating dtype.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_creator")

    def __init__(self, data: Any, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._creator: Optional[Function] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise GradientError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a scalar output; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        topo_order: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            # Iterative DFS to avoid recursion limits on deep graphs.
            stack: List[Tuple[Tensor, bool]] = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo_order.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                if current._creator is not None:
                    for parent in current._creator.inputs:
                        if id(parent) not in visited:
                            stack.append((parent, False))

        visit(self)

        grads = {id(self): grad}
        for node in reversed(topo_order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._creator is None:
                # Leaf: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            ctx = node._creator
            if ctx is None:
                continue
            input_grads = ctx.backward(node_grad)
            if len(input_grads) != len(ctx.inputs):
                raise GradientError(
                    f"{type(ctx).__name__}.backward returned {len(input_grads)} gradients "
                    f"for {len(ctx.inputs)} inputs"
                )
            for parent, parent_grad in zip(ctx.inputs, input_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                parent_grad = np.asarray(parent_grad, dtype=parent.data.dtype)
                existing = grads.get(id(parent))
                grads[id(parent)] = parent_grad if existing is None else existing + parent_grad
            if node is not self and node.requires_grad and node._creator is not None:
                # Interior node requested gradient retention via retain semantics:
                # we keep interior grads only when explicitly marked as leaves,
                # which plain Tensors are not; nothing to do.
                pass

    # ------------------------------------------------------------------
    # Operator plumbing (implementations live in repro.autodiff.ops)
    # ------------------------------------------------------------------
    def _binary(self, other: Any, fn: Any, reverse: bool = False) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(np.asarray(other, dtype=self.data.dtype))
        if reverse:
            return fn.apply(other_t, self)
        return fn.apply(self, other_t)

    def __add__(self, other: Any) -> "Tensor":
        from repro.autodiff.ops import Add

        return self._binary(other, Add)

    __radd__ = __add__

    def __sub__(self, other: Any) -> "Tensor":
        from repro.autodiff.ops import Sub

        return self._binary(other, Sub)

    def __rsub__(self, other: Any) -> "Tensor":
        from repro.autodiff.ops import Sub

        return self._binary(other, Sub, reverse=True)

    def __mul__(self, other: Any) -> "Tensor":
        from repro.autodiff.ops import Mul

        return self._binary(other, Mul)

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "Tensor":
        from repro.autodiff.ops import Div

        return self._binary(other, Div)

    def __rtruediv__(self, other: Any) -> "Tensor":
        from repro.autodiff.ops import Div

        return self._binary(other, Div, reverse=True)

    def __neg__(self) -> "Tensor":
        from repro.autodiff.ops import Neg

        return Neg.apply(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from repro.autodiff.ops import Pow

        return Pow.apply(self, exponent=float(exponent))

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.autodiff.ops import MatMul

        return self._binary(other, MatMul)

    def __getitem__(self, index: Any) -> "Tensor":
        from repro.autodiff.ops import GetItem

        return GetItem.apply(self, index=index)

    # Reductions / shape ops -------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff.ops import Sum

        return Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff.ops import Mean

        return Mean.apply(self, axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        from repro.autodiff.ops import Max

        return Max.apply(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.autodiff.ops import Reshape

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Reshape.apply(self, shape=shape)

    def transpose(self, *axes: int) -> "Tensor":
        from repro.autodiff.ops import Transpose

        return Transpose.apply(self, axes=axes or None)

    def flatten_batch(self) -> "Tensor":
        """Flatten all dimensions except the leading batch dimension."""
        return self.reshape(self.shape[0], -1)

    # Elementwise ------------------------------------------------------------
    def exp(self) -> "Tensor":
        from repro.autodiff.ops import Exp

        return Exp.apply(self)

    def log(self) -> "Tensor":
        from repro.autodiff.ops import Log

        return Log.apply(self)

    def relu(self) -> "Tensor":
        from repro.autodiff.ops import ReLU

        return ReLU.apply(self)

    def sigmoid(self) -> "Tensor":
        from repro.autodiff.ops import Sigmoid

        return Sigmoid.apply(self)

    def tanh(self) -> "Tensor":
        from repro.autodiff.ops import Tanh

        return Tanh.apply(self)

    def abs(self) -> "Tensor":
        from repro.autodiff.ops import Abs

        return Abs.apply(self)

    def clip(self, low: float, high: float) -> "Tensor":
        from repro.autodiff.ops import Clip

        return Clip.apply(self, low=float(low), high=float(high))


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    from repro.autodiff.ops import Stack

    tensors = list(tensors)
    if not tensors:
        raise ShapeError("stack() requires at least one tensor")
    return Stack.apply(*tensors, axis=axis)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis (differentiable)."""
    from repro.autodiff.ops import Concat

    tensors = list(tensors)
    if not tensors:
        raise ShapeError("concat() requires at least one tensor")
    return Concat.apply(*tensors, axis=axis)
