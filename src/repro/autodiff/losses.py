"""Numerically stable loss functions and softmax variants."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autodiff.tensor import Function, Tensor
from repro.errors import ShapeError


class LogSoftmaxFunction(Function):
    """Row-wise log-softmax over the last axis, computed stably."""

    def forward(self, logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        out = shifted - log_norm
        self.save_for_backward(out)
        return out

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        (out,) = self.saved
        softmax = np.exp(out)
        return (grad - softmax * grad.sum(axis=-1, keepdims=True),)


class CrossEntropyFunction(Function):
    """Mean cross-entropy between logits and integer class labels.

    Fuses log-softmax and NLL for stability and a cheap backward pass.
    """

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        if logits.ndim != 2:
            raise ShapeError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
        labels = labels.astype(np.int64).reshape(-1)
        if labels.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"labels ({labels.shape[0]}) and logits ({logits.shape[0]}) batch mismatch"
            )
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        log_probs = shifted - log_norm
        n = logits.shape[0]
        loss = -log_probs[np.arange(n), labels].mean()
        self.save_for_backward(log_probs, labels)
        return np.asarray(loss, dtype=logits.dtype)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        log_probs, labels = self.saved
        n = log_probs.shape[0]
        grad_logits = np.exp(log_probs)
        grad_logits[np.arange(n), labels] -= 1.0
        grad_logits *= np.asarray(grad) / n
        return (grad_logits,)


def log_softmax(logits: Tensor) -> Tensor:
    """Log-softmax over the last axis."""
    return LogSoftmaxFunction.apply(logits)


def softmax(logits: Tensor) -> Tensor:
    """Softmax over the last axis (via stable log-softmax)."""
    return log_softmax(logits).exp()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy loss for integer labels.

    ``labels`` is a plain integer array (not differentiated).
    """
    labels = np.asarray(labels)
    return CrossEntropyFunction.apply(logits, labels)


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given log-probabilities."""
    labels = np.asarray(labels).astype(np.int64).reshape(-1)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), labels]
    return -(picked.mean())


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error between a tensor and a target array/tensor."""
    target_t = target if isinstance(target, Tensor) else Tensor(np.asarray(target))
    diff = prediction - target_t
    return (diff * diff).mean()
