"""Learning-rate schedules that mutate an optimizer's ``lr`` in place."""

from __future__ import annotations

import math

from repro.optim.base import Optimizer


class StepSchedule:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        decays = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**decays)


class CosineSchedule:
    """Cosine-anneal the learning rate from the base value to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch along the cosine annealing curve."""
        self.epoch = min(self.epoch + 1, self.total_epochs)
        cos = 0.5 * (1.0 + math.cos(math.pi * self.epoch / self.total_epochs))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cos
