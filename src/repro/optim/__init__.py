"""Optimizers and learning-rate schedules."""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.lr_scheduler import CosineSchedule, StepSchedule

__all__ = ["SGD", "Adam", "StepSchedule", "CosineSchedule"]
