"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr < 0:
            raise ValueError(f"learning rate must be non-negative, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear every managed parameter's accumulated gradient."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the parameters' current gradients."""
        raise NotImplementedError
