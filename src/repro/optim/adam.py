"""Adam optimizer."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first and second moment estimates."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """One Adam update with bias-corrected moment estimates."""
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
