"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer


class SGD(Optimizer):
    """SGD with classical momentum and decoupled L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """One SGD update; parameters without gradients are skipped."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad
