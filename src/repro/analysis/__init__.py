"""Probability analysis, evaluation metrics and GradCAM."""

from repro.analysis.probability import (
    target_page_probability,
    target_page_probability_approx,
    monte_carlo_target_page_probability,
)
from repro.analysis.metrics import (
    attack_success_rate,
    dram_match_rate,
    evaluate_attack,
    n_flip,
    test_accuracy,
)
from repro.analysis.gradcam import gradcam_heatmap, gradcam_focus_on_mask

__all__ = [
    "target_page_probability",
    "target_page_probability_approx",
    "monte_carlo_target_page_probability",
    "test_accuracy",
    "attack_success_rate",
    "n_flip",
    "dram_match_rate",
    "evaluate_attack",
    "gradcam_heatmap",
    "gradcam_focus_on_mask",
]
