"""Attack-time and stealth comparison (Section VII, "Related Works").

The paper compares its end-to-end costs against Terminal Brain Damage and
DeepHammer: per-row hammer time (800 ms at 15 sides profiling, 400 ms at
7 sides online, vs DeepHammer's 190 ms double-sided), total online time
(hammer time x N_flip), and stealth (post-attack clean accuracy).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.rowhammer.hammer import HAMMER_SECONDS_7_SIDED, HAMMER_SECONDS_15_SIDED

# Per-row hammer times reported for the prior attacks (Section VII).
DEEPHAMMER_SECONDS_PER_ROW = 0.190
TBD_SECONDS_PER_ROW = 0.200  # Terminal Brain Damage (simulated assumption)


@dataclasses.dataclass(frozen=True)
class AttackTimeEstimate:
    """Online attack-time breakdown for one attack configuration."""

    method: str
    n_flip: int
    seconds_per_row: float
    profiling_minutes: float

    @property
    def online_seconds(self) -> float:
        """Total online hammering time: rows hammered x per-row cost."""
        return self.n_flip * self.seconds_per_row

    @property
    def total_minutes(self) -> float:
        return self.profiling_minutes + self.online_seconds / 60.0


def estimate_attack_time(
    n_flip: int,
    n_sides: int = 7,
    profiled_mb: int = 128,
) -> AttackTimeEstimate:
    """Estimate this paper's attack time for a given flip count.

    Profiling runs offline at 94 min / 128 MB; online each target row is
    hammered once with the n-sided pattern.
    """
    if n_sides >= 15:
        per_row = HAMMER_SECONDS_15_SIDED
    else:
        per_row = HAMMER_SECONDS_7_SIDED * n_sides / 7.0
    profiling_minutes = 94.0 * profiled_mb / 128.0
    return AttackTimeEstimate(
        method="CFT+BR (this work)",
        n_flip=n_flip,
        seconds_per_row=per_row,
        profiling_minutes=profiling_minutes,
    )


def related_work_comparison(n_flip: int = 10) -> List[Dict[str, object]]:
    """Section VII's comparison table: objectives, time and stealth.

    Stealth figures are the papers' reported post-attack clean accuracies
    on VGG-16/CIFAR-10: ~10 % for the accuracy-depletion attacks vs >92 %
    here (the attack preserves clean behaviour by design).
    """
    ours = estimate_attack_time(n_flip, n_sides=7)
    return [
        {
            "method": "Terminal Brain Damage",
            "objective": "accuracy depletion",
            "seconds_per_row": TBD_SECONDS_PER_ROW,
            "online_seconds": n_flip * TBD_SECONDS_PER_ROW,
            "post_attack_clean_accuracy": 0.10,
            "stealthy": False,
        },
        {
            "method": "DeepHammer",
            "objective": "accuracy depletion",
            "seconds_per_row": DEEPHAMMER_SECONDS_PER_ROW,
            "online_seconds": n_flip * DEEPHAMMER_SECONDS_PER_ROW,
            "post_attack_clean_accuracy": 0.10,
            "stealthy": False,
        },
        {
            "method": ours.method,
            "objective": "stealthy targeted backdoor",
            "seconds_per_row": ours.seconds_per_row,
            "online_seconds": ours.online_seconds,
            "post_attack_clean_accuracy": 0.92,
            "stealthy": True,
        },
    ]
