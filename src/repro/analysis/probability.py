"""Target-page probability analysis (Equations 1 and 2, Figures 9 and 10).

The equations give the probability that at least one of ``N`` flippy pages
in a profiled buffer contains usable flips at a *specific chain of bit
offsets* with the required directions -- the quantity that makes one flip
per page realistic and 2+ flips per page hopeless.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng

PAGE_BITS = 32_768  # bits in a 4 KB page (S in the paper)


def target_page_probability(
    k: int,
    l: int,
    n_up: float,
    n_down: float,
    num_pages: int,
    page_bits: int = PAGE_BITS,
) -> float:
    """Equation 1: exact form with separate flip directions.

    Parameters
    ----------
    k / l:
        Number of required 0->1 / 1->0 bit offsets in the page.
    n_up / n_down:
        Average number of 0->1 / 1->0 flippable cells per page.
    num_pages:
        Number of flippy pages available (N).
    page_bits:
        Bits per page (S).
    """
    if k < 0 or l < 0:
        raise ValueError(f"k and l must be non-negative, got {k}, {l}")
    if num_pages < 0:
        raise ValueError(f"num_pages must be non-negative, got {num_pages}")
    single = 1.0
    for i in range(k):
        single *= max(0.0, (n_up - i)) / (page_bits - i)
    for j in range(l):
        single *= max(0.0, (n_down - j)) / (page_bits - k - j)
    single = min(max(single, 0.0), 1.0)
    return float(1.0 - (1.0 - single) ** num_pages)


def target_page_probability_approx(
    num_offsets: int,
    flips_per_page: float,
    num_pages: int,
    page_bits: int = PAGE_BITS,
) -> float:
    """Equation 2: reduced form using the combined flip rate.

    ``num_offsets`` is k+l; ``flips_per_page`` is n_up + n_down (the paper
    uses 34 for its DDR3 reference chip).
    """
    if num_offsets < 0:
        raise ValueError(f"num_offsets must be non-negative, got {num_offsets}")
    single = 1.0
    for i in range(num_offsets):
        single *= max(0.0, flips_per_page - i) / (page_bits - i)
    single = min(max(single, 0.0), 1.0)
    return float(1.0 - (1.0 - single) ** num_pages)


def monte_carlo_target_page_probability(
    k: int,
    l: int,
    n_up: int,
    n_down: int,
    num_pages: int,
    trials: int = 2000,
    page_bits: int = PAGE_BITS,
    rng: SeedLike = 0,
) -> float:
    """Empirical cross-check of Eq. 1 by direct simulation.

    Each trial scatters ``n_up`` up-flippable and ``n_down`` down-flippable
    cells uniformly in each of ``num_pages`` pages and checks whether any
    page covers the k+l required offsets with matching directions.  The
    required offsets are fixed (their identity does not matter by symmetry).
    """
    rng = new_rng(rng)
    required_up = np.arange(k)
    required_down = np.arange(k, k + l)
    hits = 0
    for _ in range(trials):
        found = False
        for _ in range(num_pages):
            cells = rng.choice(page_bits, size=n_up + n_down, replace=False)
            ups = set(cells[:n_up].tolist())
            downs = set(cells[n_up:].tolist())
            if all(offset in ups for offset in required_up) and all(
                offset in downs for offset in required_down
            ):
                found = True
                break
        if found:
            hits += 1
    return hits / trials
