"""Evaluation metrics (Section V-B): N_flip, r_match, TA and ASR."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.autodiff import no_grad
from repro.autodiff.tensor import Tensor
from repro.data.dataset import ArrayDataset
from repro.data.trigger import TriggerPattern
from repro.nn.module import Module
from repro.quant.bits import hamming_distance
from repro.quant.weightfile import PAGE_SIZE_BITS


def _predict(
    model: Module, images: np.ndarray, batch_size: int = 256, engine=None
) -> np.ndarray:
    """Class predictions for a batch of images, in eval mode.

    ``engine`` is an optional :class:`repro.engine.EvalEngine` over the same
    model; when given, batched logits are served from its layer-prefix cache
    (byte-identical to the plain forward, so predictions never change).
    """
    was_training = model.training
    model.eval()
    predictions = []
    with no_grad():
        for start in range(0, len(images), batch_size):
            batch = images[start : start + batch_size]
            if engine is not None:
                logits = engine.forward(batch)
            else:
                logits = model(Tensor(batch)).numpy()
            predictions.append(logits.argmax(axis=1))
    if was_training:
        model.train()
    return np.concatenate(predictions) if predictions else np.empty(0, dtype=np.int64)


def test_accuracy(
    model: Module, dataset: ArrayDataset, batch_size: int = 256, engine=None
) -> float:
    """TA: fraction of clean test samples classified correctly."""
    predictions = _predict(model, dataset.images, batch_size, engine=engine)
    return float((predictions == dataset.labels).mean()) if len(dataset) else 0.0


def attack_success_rate(
    model: Module,
    dataset: ArrayDataset,
    trigger: TriggerPattern,
    target_class: int,
    batch_size: int = 256,
    engine=None,
) -> float:
    """ASR: fraction of trigger-stamped test samples classified as the target.

    Matches the paper's definition: the trigger is added to every test
    sample and success means predicting the attacker's target class.
    """
    if not len(dataset):
        return 0.0
    stamped = trigger.apply(dataset.images)
    predictions = _predict(model, stamped, batch_size, engine=engine)
    return float((predictions == target_class).mean())


def n_flip(original_weights: np.ndarray, modified_weights: np.ndarray) -> int:
    """N_flip: Hamming distance in bits between two quantized weight states."""
    return hamming_distance(original_weights, modified_weights)


def dram_match_rate(
    n_match: int,
    total_flips: int,
    accidental_flips_in_pages: int = 0,
    page_bits: int = PAGE_SIZE_BITS,
) -> float:
    """r_match (percent): how realistic a bit-flip plan is on real DRAM.

    ``r_match = n_match / N_flip * (1 - delta / S) * 100`` where ``delta``
    is the number of accidental flips within the targeted pages.
    """
    if total_flips <= 0:
        return 0.0
    penalty = max(0.0, 1.0 - accidental_flips_in_pages / page_bits)
    return 100.0 * (n_match / total_flips) * penalty


@dataclasses.dataclass
class AttackEvaluation:
    """TA/ASR snapshot of one model state."""

    test_accuracy: float
    attack_success_rate: float


def evaluate_attack(
    model: Module,
    dataset: ArrayDataset,
    trigger: TriggerPattern,
    target_class: int,
    batch_size: int = 256,
    engine=None,
) -> AttackEvaluation:
    """Evaluate TA and ASR of a (possibly backdoored) model in one pass."""
    return AttackEvaluation(
        test_accuracy=test_accuracy(model, dataset, batch_size, engine=engine),
        attack_success_rate=attack_success_rate(
            model, dataset, trigger, target_class, batch_size, engine=engine
        ),
    )
