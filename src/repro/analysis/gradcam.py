"""GradCAM (Selvaraju et al.) for the reproduction's models.

Used for the SentiNet analysis (Fig. 8): after a successful backdoor
injection, the model's GradCAM focus shifts onto the trigger patch for
stamped inputs, regardless of where the true object lies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.errors import ReproError
from repro.nn.module import Module


def gradcam_heatmap(model: Module, image: np.ndarray, class_index: Optional[int] = None) -> np.ndarray:
    """Compute a GradCAM heatmap over the final convolutional features.

    Parameters
    ----------
    model:
        Must expose ``forward_features`` and ``forward_head`` (all models in
        :mod:`repro.models` do).
    image:
        Single image (C, H, W).
    class_index:
        Class whose score is explained; defaults to the predicted class.

    Returns
    -------
    Heatmap of shape (H_f, W_f) normalized to [0, 1] (feature resolution).
    """
    if not hasattr(model, "forward_features") or not hasattr(model, "forward_head"):
        raise ReproError("model does not expose forward_features/forward_head for GradCAM")
    was_training = model.training
    model.eval()
    try:
        x = Tensor(np.asarray(image, dtype=np.float32)[None])
        features = model.forward_features(x)
        # Re-root the tape at the feature maps so their gradient is retained.
        leaf = Tensor(features.numpy(), requires_grad=True)
        logits = model.forward_head(leaf)
        scores = logits.numpy()[0]
        target = int(class_index) if class_index is not None else int(scores.argmax())
        seed = np.zeros_like(logits.numpy())
        seed[0, target] = 1.0
        logits.backward(seed)
        grads = leaf.grad[0]  # (C, H_f, W_f)
        activations = leaf.numpy()[0]
    finally:
        if was_training:
            model.train()

    weights = grads.mean(axis=(1, 2))  # alpha_c: GAP over spatial dims
    cam = np.maximum((weights[:, None, None] * activations).sum(axis=0), 0.0)
    peak = cam.max()
    if peak > 0:
        cam = cam / peak
    return cam.astype(np.float32)


def gradcam_focus_on_mask(
    heatmap: np.ndarray, mask: np.ndarray, image_size: Optional[int] = None
) -> float:
    """Fraction of GradCAM mass inside a (downsampled) trigger mask.

    ``mask`` is the trigger's (C, H, W) or (H, W) boolean mask at image
    resolution; the heatmap is at feature resolution, so the mask is
    box-downsampled before comparison.  Returns mass(mask) / mass(total).
    """
    mask = np.asarray(mask)
    if mask.ndim == 3:
        mask = mask.any(axis=0)
    h_f, w_f = heatmap.shape
    h, w = mask.shape
    # Box-downsample the mask onto the heatmap grid.
    down = np.zeros((h_f, w_f), dtype=bool)
    for i in range(h_f):
        for j in range(w_f):
            y0, y1 = i * h // h_f, max((i + 1) * h // h_f, i * h // h_f + 1)
            x0, x1 = j * w // w_f, max((j + 1) * w // w_f, j * w // w_f + 1)
            down[i, j] = mask[y0:y1, x0:x1].any()
    total = float(heatmap.sum())
    if total == 0.0:
        return 0.0
    return float(heatmap[down].sum() / total)
