"""Figures 11 and 12: the SPOILER and row-buffer-conflict side channels.

Fig. 11: timing peaks at 256 KB intervals over virtual addresses reveal
physically contiguous memory.
Fig. 12: alternating accesses to same-bank/different-row addresses take
~400 cycles (row-buffer conflict) vs ~200 otherwise, and roughly 1/#banks
of random pairs conflict.
"""

import numpy as np
import pytest

from benchmarks.conftest import record_result
from repro.memory.geometry import DRAMGeometry
from repro.memory.mmap import MappedFile
from repro.memory.sidechannel import SPOILER_PERIOD_FRAMES, RowConflictChannel, SpoilerChannel


def test_fig11_spoiler_contiguity_peaks(benchmark):
    def run():
        channel = SpoilerChannel()
        mapping = MappedFile(file_id=None, frames={i: i for i in range(512)})
        times = channel.measure(mapping, rng=7)
        return channel, times

    channel, times = benchmark.pedantic(run, rounds=1, iterations=1)
    peaks = channel.detect_peaks(times)
    runs = channel.find_contiguous_runs(times)

    record_result(
        "fig11_spoiler_peaks",
        f"pages measured:   512\n"
        f"timing peaks at:  {peaks.tolist()}\n"
        f"peak period:      {np.diff(peaks).tolist()} (expected {SPOILER_PERIOD_FRAMES})\n"
        f"contiguous runs:  {runs}",
    )
    assert (np.diff(peaks) == SPOILER_PERIOD_FRAMES).all()
    assert runs and runs[0][1] >= 448  # nearly the whole buffer is one run


def test_fig12_row_conflict_latency_distribution(benchmark):
    def run():
        geometry = DRAMGeometry(num_banks=16, rows_per_bank=512, row_size_bytes=8192)
        channel = RowConflictChannel(geometry)
        rng = np.random.default_rng(8)
        base = 0
        times = [
            channel.measure_pair(base, int(frame) * 4096, rng=rng)
            for frame in rng.choice(geometry.total_frames, size=600, replace=False)
        ]
        return geometry, np.asarray(times)

    geometry, times = benchmark.pedantic(run, rounds=1, iterations=1)

    threshold = 300.0
    conflict_fraction = float((times >= threshold).mean())
    record_result(
        "fig12_row_conflict",
        f"pairs measured:      {times.size}\n"
        f"fast accesses mean:  {times[times < threshold].mean():.0f} cycles\n"
        f"conflict mean:       {times[times >= threshold].mean():.0f} cycles\n"
        f"conflict fraction:   {conflict_fraction:.3f} "
        f"(expected ~1/{geometry.num_banks} = {1/geometry.num_banks:.3f})",
    )
    # Bimodal at ~200 vs ~400 cycles (Fig. 12's two clusters).
    assert times[times >= threshold].mean() == pytest.approx(400.0, abs=25.0)
    assert times[times < threshold].mean() == pytest.approx(200.0, abs=25.0)
    # About one sixteenth of addresses conflict.
    assert conflict_fraction == pytest.approx(1 / geometry.num_banks, abs=0.04)
