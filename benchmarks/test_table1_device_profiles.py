"""Table I: average bit flips per memory page across DRAM devices.

Simulates each of the paper's 20 profiled devices (14 DDR3 + 6 DDR4) and
profiles a buffer with the maximum-yield pattern the paper used for each
generation (double-sided on DDR3, 15-sided on DDR4).  The measured per-page
flip averages must track the Table I values the simulator was built from.
"""

import pytest

from benchmarks.conftest import record_result
from repro.memory.dram import DRAMArray
from repro.memory.geometry import DRAMGeometry
from repro.memory.mmap import OSMemoryModel
from repro.rowhammer import DEVICE_PROFILES, HammerEngine, MemoryProfiler

PROFILE_PAGES = 192


def profile_device(name, seed=0, pages=PROFILE_PAGES):
    device = DEVICE_PROFILES[name]
    geometry = DRAMGeometry(num_banks=8, rows_per_bank=max(256, pages), row_size_bytes=8192)
    dram = DRAMArray(geometry, flips_per_page_mean=device.flips_per_page, seed=seed)
    os_model = OSMemoryModel(dram, rng=seed + 1)
    engine = HammerEngine(dram, device)
    mapping = os_model.mmap_anonymous(pages)
    n_sides = 2 if device.ddr_version == 3 else 15
    profile = MemoryProfiler(os_model, engine).profile_mapping(mapping, n_sides=n_sides)
    return device, profile


def test_table1_flips_per_page(benchmark, results_dir):
    def run():
        rows = []
        for name in sorted(DEVICE_PROFILES):
            device, profile = profile_device(name)
            rows.append((name, device.ddr_version, device.flips_per_page,
                         profile.avg_flips_per_page, profile.n_sides))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'DRAM':<6} {'DDR':>4} {'paper flips/page':>17} {'measured':>10} {'pattern':>8}"]
    for name, ddr, paper, measured, sides in rows:
        lines.append(f"{name:<6} {ddr:>4} {paper:>17.2f} {measured:>10.2f} {sides:>7}s")
    record_result("table1_device_profiles", "\n".join(lines))

    for name, ddr, paper, measured, _ in rows:
        # Both generations profile with their saturating pattern, so the
        # measured per-page averages must track Table I.
        assert measured == pytest.approx(paper, rel=0.35, abs=1.0), name

    # Orderings the paper highlights: K1/K2 are by far the flippiest.
    measured_by_name = {name: m for name, _, _, m, _ in rows}
    assert measured_by_name["K2"] > measured_by_name["L1"]
    assert measured_by_name["K1"] > measured_by_name["M1"]


def test_table1_ddr3_vs_ddr4_pattern_requirements(benchmark):
    """DDR4 devices need n-sided patterns; DDR3 flips with double-sided."""

    def run():
        from repro.rowhammer import get_profile

        geometry = DRAMGeometry(num_banks=8, rows_per_bank=256, row_size_bytes=8192)
        results = {}
        for name in ("A1", "K1"):
            device = get_profile(name)
            dram = DRAMArray(geometry, flips_per_page_mean=device.flips_per_page, seed=1)
            engine = HammerEngine(dram, device)
            results[name] = (engine.intensity(2), engine.intensity(15))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["A1"][0] > 0.0  # DDR3 double-sided works
    assert results["K1"][0] == 0.0  # DDR4 TRR blocks double-sided
    assert results["K1"][1] == pytest.approx(1.0)
