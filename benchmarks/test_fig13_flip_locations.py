"""Figure 13: spatial distribution of found bit flips -- CFT+BR vs TBT.

CFT+BR's flips are spread across the whole weight file (one per page group);
TBT's flips are all concentrated in the last layer's single page, which is
exactly why TBT is unrealizable with Rowhammer.
"""


from benchmarks.conftest import record_result
from repro.attacks import AttackConfig, CFTAttack, TBTAttack
from repro.quant import WeightFile


def test_fig13_flip_location_sparsity(benchmark, victim_cifar):
    qmodel, _, _, attacker_data = victim_cifar

    def run():
        snapshot = qmodel.flat_int8()
        config = AttackConfig(
            target_class=2, iterations=60, n_flip_budget=4, epsilon=0.01,
            learning_rate=0.05, seed=0,
        )
        cft = CFTAttack(config, bit_reduction=True).run(qmodel, attacker_data)
        qmodel.load_flat_int8(snapshot)
        tbt = TBTAttack(config, num_neurons=8, trigger_steps=20).run(qmodel, attacker_data)
        qmodel.load_flat_int8(snapshot)
        return cft, tbt

    cft, tbt = benchmark.pedantic(run, rounds=1, iterations=1)

    def pages_of(offline):
        original = WeightFile(offline.original_weights)
        modified = WeightFile(offline.backdoored_weights)
        return [loc.page for loc in original.bit_locations_against(modified)]

    cft_pages, tbt_pages = pages_of(cft), pages_of(tbt)
    total_pages = WeightFile(cft.original_weights).num_pages
    record_result(
        "fig13_flip_locations",
        f"weight file: {total_pages} pages\n"
        f"CFT+BR: {cft.n_flip} flips on pages {sorted(set(cft_pages))}\n"
        f"TBT:    {tbt.n_flip} flips on pages {sorted(set(tbt_pages))}",
    )

    # CFT+BR: at most one flip per page, spread across the file.
    assert len(cft_pages) == len(set(cft_pages))
    assert len(set(cft_pages)) >= 2
    # TBT: every flip lands in the last layer's page(s) -- here one page.
    assert len(set(tbt_pages)) == 1
    assert tbt.n_flip > len(set(tbt_pages))  # multiple flips share that page
