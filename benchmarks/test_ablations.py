"""Ablations over the design choices DESIGN.md calls out.

- alpha (Eq. 3): higher alpha trades clean accuracy for ASR.
- N_flip budget: more allowed flips -> at least as strong a backdoor.
- Trigger size: larger patches give the optimizer more leverage.
- Page-aligned grouping (C2): what online realizability costs to drop.
"""

import numpy as np

from benchmarks.conftest import record_result
from repro.analysis import evaluate_attack
from repro.attacks import AttackConfig, CFTAttack
from repro.quant import WeightFile

TARGET = 2


def run_attack(qmodel, attacker_data, test_data, **config_overrides):
    snapshot = qmodel.flat_int8()
    defaults = dict(
        target_class=TARGET, iterations=48, n_flip_budget=4, epsilon=0.01, seed=0
    )
    defaults.update(config_overrides)
    offline = CFTAttack(AttackConfig(**defaults), bit_reduction=True).run(
        qmodel, attacker_data
    )
    evaluation = evaluate_attack(qmodel.module, test_data, offline.trigger, TARGET)
    qmodel.load_flat_int8(snapshot)
    return offline, evaluation


def test_ablation_alpha_tradeoff(benchmark, victim_cifar):
    qmodel, _, test_data, attacker_data = victim_cifar
    test_subset = test_data.subset(np.arange(min(300, len(test_data))))

    def run():
        results = {}
        for alpha in (0.1, 0.9):
            _, evaluation = run_attack(qmodel, attacker_data, test_subset, alpha=alpha)
            results[alpha] = evaluation
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'alpha':>6} {'TA %':>8} {'ASR %':>8}"]
    for alpha, ev in sorted(results.items()):
        lines.append(
            f"{alpha:>6} {100*ev.test_accuracy:>8.2f} {100*ev.attack_success_rate:>8.2f}"
        )
    record_result("ablation_alpha", "\n".join(lines))

    # Low alpha protects TA at least as well as high alpha.
    assert results[0.1].test_accuracy >= results[0.9].test_accuracy - 0.02


def test_ablation_flip_budget(benchmark, victim_cifar):
    qmodel, _, test_data, attacker_data = victim_cifar
    test_subset = test_data.subset(np.arange(min(300, len(test_data))))
    max_budget = max(1, qmodel.total_params // 4096)

    def run():
        results = {}
        for budget in sorted({1, max_budget}):
            offline, evaluation = run_attack(
                qmodel, attacker_data, test_subset, n_flip_budget=budget
            )
            results[budget] = (offline.n_flip, evaluation)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'budget':>7} {'N_flip':>7} {'TA %':>8} {'ASR %':>8}"]
    for budget, (n_flip, ev) in sorted(results.items()):
        lines.append(
            f"{budget:>7} {n_flip:>7} {100*ev.test_accuracy:>8.2f} "
            f"{100*ev.attack_success_rate:>8.2f}"
        )
    record_result("ablation_flip_budget", "\n".join(lines))

    budgets = sorted(results)
    for budget, (n_flip, _) in results.items():
        assert n_flip <= budget  # the constraint binds
    # More budget never hurts much: largest budget's ASR within noise of best.
    best_asr = max(ev.attack_success_rate for _, ev in results.values())
    assert results[budgets[-1]][1].attack_success_rate >= best_asr - 0.15


def test_ablation_trigger_size(benchmark, victim_cifar):
    qmodel, _, test_data, attacker_data = victim_cifar
    test_subset = test_data.subset(np.arange(min(300, len(test_data))))

    def run():
        results = {}
        for size in (4, 14):
            _, evaluation = run_attack(
                qmodel, attacker_data, test_subset, trigger_size=size
            )
            results[size] = evaluation
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'size':>5} {'TA %':>8} {'ASR %':>8}"]
    for size, ev in sorted(results.items()):
        lines.append(
            f"{size:>5} {100*ev.test_accuracy:>8.2f} {100*ev.attack_success_rate:>8.2f}"
        )
    record_result("ablation_trigger_size", "\n".join(lines))

    # A larger trigger gives at least as much attack leverage as a tiny one.
    assert results[14].attack_success_rate >= results[4].attack_success_rate - 0.1


def test_ablation_page_constraint_cost(benchmark, victim_cifar):
    """C2's cost: CFT+BR spreads flips (realizable); CFT without BR leaves
    multi-bit bytes (unrealizable).  Compare their required flips per page."""
    qmodel, _, test_data, attacker_data = victim_cifar

    def run():
        snapshot = qmodel.flat_int8()
        config = AttackConfig(
            target_class=TARGET, iterations=48, n_flip_budget=4, epsilon=0.01,
            step_quanta=33.0, seed=0,
        )
        with_br = CFTAttack(config, bit_reduction=True).run(qmodel, attacker_data)
        qmodel.load_flat_int8(snapshot)
        without_br = CFTAttack(config, bit_reduction=False).run(qmodel, attacker_data)
        qmodel.load_flat_int8(snapshot)
        return with_br, without_br

    with_br, without_br = benchmark.pedantic(run, rounds=1, iterations=1)

    def max_flips_per_byte(offline):
        original = WeightFile(offline.original_weights)
        modified = WeightFile(offline.backdoored_weights)
        locations = original.bit_locations_against(modified)
        per_byte = {}
        for loc in locations:
            key = (loc.page, loc.byte_offset)
            per_byte[key] = per_byte.get(key, 0) + 1
        return max(per_byte.values(), default=0)

    record_result(
        "ablation_page_constraint",
        f"CFT+BR: N_flip={with_br.n_flip}, max flips/byte={max_flips_per_byte(with_br)}\n"
        f"CFT:    N_flip={without_br.n_flip}, max flips/byte={max_flips_per_byte(without_br)}",
    )
    assert max_flips_per_byte(with_br) <= 1
    if without_br.n_flip:
        assert max_flips_per_byte(without_br) >= 2
