"""Table III: CFT+BR generalizes to VGG architectures.

The paper reports over 90 % ASR on VGG-11/16 with small flip counts and no
test-accuracy loss; we check the same qualitative outcome on width-scaled
VGGs (high offline ASR relative to base, near-full online realizability).
"""

import numpy as np
import pytest

from benchmarks.conftest import record_result
from repro.attacks import AttackConfig, CFTAttack
from repro.core import BackdoorPipeline, MemoryConfig, PipelineConfig
from repro.core.training import evaluate_accuracy, pretrained_quantized_model


@pytest.mark.parametrize("model_name", ["vgg11", "vgg16"])
def test_table3_vgg_generalization(benchmark, scale, model_name):
    def run():
        # VGGs are much heavier per width unit than the CIFAR ResNets: use a
        # smaller multiplier so the bench stays CPU-feasible.
        vgg_width = min(scale.width, 0.125)
        vgg_epochs = min(scale.epochs, 10)
        qmodel, _, test_data, attacker_data = pretrained_quantized_model(
            model_name, dataset="cifar10", width=vgg_width, epochs=vgg_epochs, seed=0
        )
        if scale.test_subset is not None and scale.test_subset < len(test_data):
            test_data = test_data.subset(np.arange(scale.test_subset))
        base_accuracy = evaluate_accuracy(qmodel.module, test_data)
        # VGGs occupy far more pages than the width-scaled ResNets (paper:
        # 30-100 flips on VGG-11/16), so give the attack the larger budget
        # the page count permits, and a slightly larger trigger -- the
        # paper's VGG rows also use the largest flip counts in Table III.
        pages = max(1, qmodel.total_params // 4096)
        config = AttackConfig(
            target_class=2,
            iterations=scale.attack_iterations,
            n_flip_budget=min(12, pages),
            trigger_size=12,
            epsilon=0.01,
            seed=0,
        )
        # A larger profiled buffer keeps the per-flip templating miss
        # probability negligible for the bigger VGG flip budgets.
        buffer_pages = max(scale.attacker_buffer_pages, 8192)
        pipeline = BackdoorPipeline(
            PipelineConfig(
                memory=MemoryConfig(device="K1", attacker_buffer_pages=buffer_pages, seed=0)
            )
        )
        result = pipeline.run(
            CFTAttack(config, bit_reduction=True), qmodel, attacker_data, test_data, 2
        )
        return base_accuracy, result

    base_accuracy, result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = result.as_row()

    record_result(
        f"table3_{model_name}",
        f"{model_name}: base acc {100*base_accuracy:.2f}%\n"
        f"offline: N_flip={row['offline_n_flip']:.0f} TA={row['offline_ta']:.2f}% "
        f"ASR={row['offline_asr']:.2f}%\n"
        f"online:  N_flip={row['online_n_flip']:.0f} TA={row['online_ta']:.2f}% "
        f"ASR={row['online_asr']:.2f}% r_match={row['r_match']:.2f}%",
    )

    # Shape: high realizability, bounded TA damage, ASR above chance.
    assert row["r_match"] > 90.0
    assert row["offline_ta"] > 100 * base_accuracy - 12.0
    assert row["offline_asr"] > 15.0  # chance is 10 %
