"""Figure 8: GradCAM focus shifts onto the trigger after the attack.

Before the attack, the model's saliency on trigger-stamped inputs stays
mostly on the image content; after the backdoor injection, the focus moves
onto the trigger patch for stamped inputs (the SentiNet discussion).
"""

import numpy as np

from benchmarks.conftest import record_result
from repro.analysis import gradcam_focus_on_mask, gradcam_heatmap
from repro.attacks import AttackConfig, CFTAttack

NUM_IMAGES = 8


def test_fig8_gradcam_focus_shift(benchmark, victim_cifar):
    qmodel, _, test_data, attacker_data = victim_cifar

    def run():
        snapshot = qmodel.flat_int8()
        model = qmodel.module
        config = AttackConfig(
            target_class=2, iterations=60, n_flip_budget=4, epsilon=0.01, seed=0
        )
        attack = CFTAttack(config, bit_reduction=True)
        images = test_data.images[:NUM_IMAGES]

        offline = attack.run(qmodel, attacker_data)
        trigger = offline.trigger
        stamped = trigger.apply(images)

        after = [
            gradcam_focus_on_mask(
                gradcam_heatmap(model, img, config.target_class), trigger.mask
            )
            for img in stamped
        ]
        # Restore the clean victim and measure the same quantity.
        qmodel.load_flat_int8(snapshot)
        before = [
            gradcam_focus_on_mask(
                gradcam_heatmap(model, img, config.target_class), trigger.mask
            )
            for img in stamped
        ]
        return np.asarray(before), np.asarray(after)

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)

    record_result(
        "fig8_gradcam_focus",
        f"GradCAM mass on the trigger region (target-class heatmap):\n"
        f"  clean model:      {before.mean():.3f} +/- {before.std():.3f}\n"
        f"  backdoored model: {after.mean():.3f} +/- {after.std():.3f}\n"
        f"  per-image shift:  {(after - before).round(3).tolist()}",
    )
    # Shape: on average, the backdoored model attends to the trigger more.
    assert after.mean() >= before.mean()
