"""Section VI: the countermeasure evaluation.

- Prevention: binarization shrinks the weight file ~8x (capping N_flip);
  PWC training tightens weight clusters and worsens the attack trade-off.
- Detection: DeepDyve alarms but cannot stop a persistent fault; weight
  encoding only covers the protected layers; RADAR's MSB checksums are
  bypassed by constraining the attack away from bit 7.
- Recovery: weight reconstruction collapses an unaware attack but an aware
  attacker keeps only flips that survive the clipping.
"""

import numpy as np

from benchmarks.conftest import record_result
from repro.analysis import evaluate_attack
from repro.attacks import AttackConfig, CFTAttack
from repro.defenses import (
    DeepDyveGuard,
    RadarDetector,
    WeightEncodingDetector,
    WeightReconstructionDefense,
    encoding_overhead_estimate,
)
from repro.defenses.binarization import binarized_page_count
from repro.quant import WeightFile

TARGET = 2


def attack_config(scale, **overrides):
    defaults = dict(
        target_class=TARGET,
        iterations=scale.attack_iterations,
        n_flip_budget=scale.n_flip_budget,
        epsilon=0.01,
        seed=0,
    )
    defaults.update(overrides)
    return AttackConfig(**defaults)


def test_prevention_binarization_caps_flip_budget(benchmark, victim_cifar):
    qmodel, _, _, _ = victim_cifar

    def run():
        int8_pages = WeightFile(qmodel.flat_int8()).num_pages
        bnn_pages = binarized_page_count(qmodel.module)
        return int8_pages, bnn_pages

    int8_pages, bnn_pages = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "defense_binarization",
        f"int8 deployment: {int8_pages} pages -> binarized: {bnn_pages} pages\n"
        f"N_flip is capped at the page count (C2): {int8_pages} -> {bnn_pages}",
    )
    assert bnn_pages <= max(1, int8_pages // 4)


def test_prevention_pwc_strengthens_tradeoff(benchmark, scale, victim_cifar):
    """PWC-trained weights cluster tightly; the attack's TA/ASR worsens."""
    from repro.defenses.clustering import cluster_tightness, train_with_pwc
    from repro.core.training import evaluate_accuracy, pretrained_quantized_model
    from repro.quant import QuantizedModel

    def run():
        qmodel, train_data, test_data, attacker_data = pretrained_quantized_model(
            "resnet20", width=scale.width, epochs=scale.epochs, seed=0
        )
        test_data = test_data.subset(np.arange(min(300, len(test_data))))
        baseline_tightness = cluster_tightness(qmodel.module)
        # Continue training with the PWC penalty (short refinement).
        train_with_pwc(
            qmodel.module, train_data, epochs=1, penalty_lambda=5e-4,
            learning_rate=0.01, seed=0,
        )
        pwc_tightness = cluster_tightness(qmodel.module)
        defended = QuantizedModel(qmodel.module)
        accuracy = evaluate_accuracy(defended.module, test_data)
        offline = CFTAttack(attack_config(scale), bit_reduction=True).run(
            defended, attacker_data
        )
        evaluation = evaluate_attack(defended.module, test_data, offline.trigger, TARGET)
        return baseline_tightness, pwc_tightness, accuracy, evaluation

    baseline_t, pwc_t, accuracy, evaluation = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "defense_pwc",
        f"within-cluster spread: {baseline_t:.4f} -> {pwc_t:.4f} after PWC\n"
        f"defended model acc {accuracy:.2%}; attack on defended model: "
        f"TA={evaluation.test_accuracy:.2%} ASR={evaluation.attack_success_rate:.2%}",
    )
    assert pwc_t < baseline_t  # the penalty actually clusters the weights


def test_detection_deepdyve_bypass(benchmark, scale, victim_cifar):
    from repro.core.training import pretrained_quantized_model

    qmodel, _, test_data, attacker_data = victim_cifar

    def run():
        snapshot = qmodel.flat_int8()
        checker_qmodel, _, _, _ = pretrained_quantized_model(
            "resnet20", width=scale.width, epochs=scale.epochs, seed=0
        )
        offline = CFTAttack(attack_config(scale), bit_reduction=True).run(
            qmodel, attacker_data
        )
        guard = DeepDyveGuard(deployed=qmodel.module, checker=checker_qmodel.module)
        stamped = offline.trigger.apply(test_data.images[:128])
        predictions, stats = guard.predict(stamped)
        qmodel.load_flat_int8(snapshot)
        return stats, float((predictions == TARGET).mean())

    stats, hijacked = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "defense_deepdyve",
        f"alarms: {stats.alarms}/{stats.total} ({stats.alarm_rate:.1%}); "
        f"guarded predictions still hit the target class {hijacked:.1%} of the time",
    )
    # The guard's re-run consults the same persistent weights: whatever the
    # backdoored model predicts passes through, alarms notwithstanding.
    assert hijacked >= 0.0  # structural; strength asserted in Table II bench


def test_detection_weight_encoding_partial_coverage(benchmark, victim_cifar):
    qmodel, _, _, _ = victim_cifar

    def run():
        detector = WeightEncodingDetector(qmodel, rng=0)
        coverage = detector.coverage(qmodel)
        overhead = encoding_overhead_estimate(qmodel.total_params)
        # A flip outside the protected layer goes unnoticed.
        protected = set(detector.protected_layers)
        victim = next(n for n in qmodel.parameter_names if n not in protected)
        snapshot = qmodel.flat_int8()
        qmodel.apply_bit_flip(qmodel.offset_of(victim), 6)
        missed = detector.detect(qmodel) == []
        qmodel.load_flat_int8(snapshot)
        return coverage, overhead, missed

    coverage, overhead, missed = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "defense_weight_encoding",
        f"coverage of protected layers: {coverage:.1%}\n"
        f"flip outside protection missed: {missed}\n"
        f"paper-scale overhead (ResNet-34): 834.27 s exec, 374.86 MB "
        f"({overhead.storage_overhead_percent:.0f}% storage)",
    )
    assert missed
    assert coverage < 1.0


def test_detection_radar_and_msb_avoiding_attack(benchmark, scale, victim_cifar):
    qmodel, _, _, attacker_data = victim_cifar

    def run():
        snapshot = qmodel.flat_int8()
        radar = RadarDetector(qmodel, protected_bits=(7,))
        # The RADAR-aware attack never touches bit 7.
        offline = CFTAttack(
            attack_config(scale, forbidden_bits=(7,)), bit_reduction=True
        ).run(qmodel, attacker_data)
        report = radar.check(qmodel)
        qmodel.load_flat_int8(snapshot)
        return offline.n_flip, report

    n_flip, report = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "defense_radar",
        f"MSB-checksum RADAR vs bit-7-avoiding CFT+BR: {n_flip} flips applied, "
        f"detected: {report.detected} (flagged groups: {report.flagged_groups})\n"
        f"full-bit protection would cost ~40.11% inference time (paper estimate)",
    )
    assert not report.detected


def test_recovery_weight_reconstruction(benchmark, scale, victim_cifar):
    qmodel, _, test_data, attacker_data = victim_cifar

    def run():
        snapshot = qmodel.flat_int8()
        test_subset = test_data.subset(np.arange(min(300, len(test_data))))
        defense = WeightReconstructionDefense(qmodel, num_sigmas=2.5)

        # Unaware attacker: attack, then the defense reconstructs.
        offline = CFTAttack(attack_config(scale), bit_reduction=True).run(
            qmodel, attacker_data
        )
        before = evaluate_attack(qmodel.module, test_subset, offline.trigger, TARGET)
        clipped = defense.reconstruct(qmodel)
        after = evaluate_attack(qmodel.module, test_subset, offline.trigger, TARGET)

        # Aware attacker: re-run with the reconstruction inside the loop so
        # only surviving (in-range) flips are kept.
        qmodel.load_flat_int8(snapshot)
        aware_offline = CFTAttack(attack_config(scale), bit_reduction=True).run(
            qmodel, attacker_data
        )
        defense.constrain_attack(qmodel)
        aware = evaluate_attack(qmodel.module, test_subset, aware_offline.trigger, TARGET)
        aware_survivors = int(
            (qmodel.flat_int8() != aware_offline.original_weights).sum()
        )
        qmodel.load_flat_int8(snapshot)
        return before, after, clipped, aware, aware_survivors

    before, after, clipped, aware, survivors = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "defense_weight_reconstruction",
        f"unaware attacker: ASR {before.attack_success_rate:.1%} -> "
        f"{after.attack_success_rate:.1%} after reconstruction ({clipped} weights clipped)\n"
        f"aware attacker:   ASR {aware.attack_success_rate:.1%} with "
        f"{survivors} surviving modified weights",
    )
    # Reconstruction cannot *increase* the unaware attack's success.
    assert after.attack_success_rate <= before.attack_success_rate + 0.05
