"""Figure 2: sparsity of Rowhammer bit flips in a profiled buffer.

The paper finds 381,962 flips in a 128 MB DDR3 buffer -- only 0.036 % of the
cells -- with flips scattered uniformly over pages.  We profile a (scaled)
buffer on the paper's reference DDR3 density and check the same sparsity
statistics and the per-page flip distribution.
"""

import pytest

from benchmarks.conftest import record_result
from repro.memory.dram import DRAMArray
from repro.memory.geometry import DRAMGeometry
from repro.memory.mmap import OSMemoryModel
from repro.rowhammer import HammerEngine, MemoryProfiler
from repro.rowhammer.device_profiles import PAPER_DDR3_REFERENCE

PAGES = 1024  # 4 MB; the paper profiles 32768 pages (128 MB)


def test_fig2_flip_sparsity(benchmark):
    def run():
        geometry = DRAMGeometry(num_banks=8, rows_per_bank=1024, row_size_bytes=8192)
        dram = DRAMArray(
            geometry, flips_per_page_mean=PAPER_DDR3_REFERENCE.flips_per_page, seed=2
        )
        os_model = OSMemoryModel(dram, rng=3)
        engine = HammerEngine(dram, PAPER_DDR3_REFERENCE)
        mapping = os_model.mmap_anonymous(PAGES)
        return MemoryProfiler(os_model, engine).profile_mapping(mapping, n_sides=2)

    profile = benchmark.pedantic(run, rounds=1, iterations=1)

    per_page = profile.flips_per_page()
    paper_fraction = 381_962 / (32_768 * 4096 * 8)
    lines = [
        f"profiled pages:        {profile.num_frames}",
        f"total flips:           {profile.num_flips}",
        f"flip fraction:         {profile.flip_fraction:.5%} (paper: {paper_fraction:.5%})",
        f"flips/page mean:       {per_page.mean():.2f} (paper: {381_962/32_768:.2f})",
        f"flips/page max:        {per_page.max()}",
        f"pages with 0 flips:    {(per_page == 0).sum()}",
        f"0->1 vs 1->0:          {profile.direction_counts()}",
    ]
    record_result("fig2_flip_sparsity", "\n".join(lines))

    # Shape assertions: same sparsity regime as the paper.
    assert profile.flip_fraction == pytest.approx(paper_fraction, rel=0.25)
    up, down = profile.direction_counts()
    assert up == pytest.approx(down, rel=0.2)  # directions near-balanced
    # Uniform scatter: per-page counts look Poisson (variance ~= mean).
    assert per_page.var() == pytest.approx(per_page.mean(), rel=0.5)
