"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables or figures: it runs
the experiment once (``benchmark.pedantic(..., rounds=1)``), prints the
paper-style table and writes it to ``benchmarks/_results/`` for
EXPERIMENTS.md, then asserts the qualitative *shape* the paper reports.

Scale is controlled by ``REPRO_BENCH_SCALE`` (tiny | small | full); see
:class:`repro.core.experiment.ExperimentScale`.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.experiment import ExperimentScale
from repro.telemetry.testing import telemetry_guard

RESULTS_DIR = Path(__file__).parent / "_results"

# Same isolation as tests/conftest.py: telemetry stays disabled and empty
# around every benchmark unless the benchmark itself opts in.
_telemetry_guard = pytest.fixture(autouse=True)(telemetry_guard)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.from_env()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record_result(name: str, text: str) -> None:
    """Print a result block and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


@pytest.fixture(scope="session")
def victim_cifar(scale):
    """The shared CIFAR-like victim (trained once, cached on disk)."""
    from repro.core.training import pretrained_quantized_model

    return pretrained_quantized_model(
        "resnet20", dataset="cifar10", width=scale.width, epochs=scale.epochs, seed=0
    )
