"""Appendix F: the Plundervolt negative result.

The paper tries undervolting as an alternative fault vector and concludes it
cannot fault quantized DNN inference: faults require scalar multiplications
with an operand above 0xFFFF in a tight loop, none of which occur during
int8 inference.  The PoC workload, by contrast, faults reliably.
"""


from benchmarks.conftest import record_result
from repro.faults import PlundervoltCPU, UndervoltConfig


def test_appendixF_plundervolt_negative_result(benchmark, victim_cifar):
    qmodel, _, test_data, _ = victim_cifar

    def run():
        cpu = PlundervoltCPU(UndervoltConfig(undervolt_mv=350.0), rng=0)
        poc_faults = cpu.run_poc(iterations=800)
        predictions, inference_faults = cpu.run_quantized_inference(
            qmodel, test_data.images[:128]
        )
        reference = qmodel  # predictions at nominal voltage are identical
        from repro.autodiff import no_grad
        from repro.autodiff.tensor import Tensor

        with no_grad():
            nominal = reference.module(Tensor(test_data.images[:128])).numpy().argmax(1)
        return poc_faults, inference_faults, predictions, nominal

    poc_faults, inference_faults, predictions, nominal = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    record_result(
        "appendixF_plundervolt",
        f"PoC workload (scalar, operand > 0xFFFF, tight loop): {poc_faults} faults / 800 runs\n"
        f"int8 DNN inference (128 images): {inference_faults} faults\n"
        f"predictions identical to nominal voltage: {bool((predictions == nominal).all())}",
    )
    # The PoC faults; the DNN does not -- the paper's negative result.
    assert poc_faults > 0
    assert inference_faults == 0
    assert (predictions == nominal).all()
