"""Figures 5 and 6: hammer yield vs the number of aggressor rows.

Fig. 5: average flips on an 8 MB buffer grows with the number of sides in an
n-sided attack (and is ~zero below 3 sides on TRR-protected DDR4).
Fig. 6: a 15-sided pattern flips more (accidental) bits per page than a
7-sided pattern -- the reason the online attack drops to 7 sides.
"""


from benchmarks.conftest import record_result
from repro.memory.dram import DRAMArray
from repro.memory.geometry import DRAMGeometry
from repro.memory.mmap import OSMemoryModel
from repro.rowhammer import HammerEngine, MemoryProfiler, get_profile

PAGES = 256  # 1 MB slice of the paper's 8 MB buffer


def sweep_sides(sides_list, pages=PAGES, device="K1", seed=6):
    device_profile = get_profile(device)
    results = {}
    for n_sides in sides_list:
        geometry = DRAMGeometry(num_banks=8, rows_per_bank=512, row_size_bytes=8192)
        dram = DRAMArray(geometry, flips_per_page_mean=device_profile.flips_per_page, seed=seed)
        os_model = OSMemoryModel(dram, rng=seed + 1)
        engine = HammerEngine(dram, device_profile)
        mapping = os_model.mmap_anonymous(pages)
        profile = MemoryProfiler(os_model, engine).profile_mapping(mapping, n_sides=n_sides)
        results[n_sides] = profile.avg_flips_per_page
    return results


def test_fig5_flips_vs_sides(benchmark):
    sides = [1, 2, 3, 5, 7, 9, 11, 13, 15]
    results = benchmark.pedantic(lambda: sweep_sides(sides), rounds=1, iterations=1)

    lines = [f"{'sides':>6} {'avg flips/page':>15}"]
    for n in sides:
        lines.append(f"{n:>6} {results[n]:>15.2f}")
    record_result("fig5_nsided_yield", "\n".join(lines))

    # TRR: 1- and 2-sided produce (essentially) nothing on DDR4.
    assert results[1] == 0.0
    assert results[2] == 0.0
    # Beyond TRR's tracking, yield grows monotonically with sides.
    yields = [results[n] for n in sides[2:]]
    assert all(a <= b + 1e-9 for a, b in zip(yields, yields[1:]))
    assert results[15] > results[3] * 1.5


def test_fig6_15_vs_7_sided_accidental_flips(benchmark):
    results = benchmark.pedantic(lambda: sweep_sides([7, 15]), rounds=1, iterations=1)

    ratio = results[15] / max(results[7], 1e-9)
    record_result(
        "fig6_aggressor_tradeoff",
        f"7-sided:  {results[7]:.2f} flips/page\n"
        f"15-sided: {results[15]:.2f} flips/page\n"
        f"ratio:    {ratio:.2f} (paper: reducing 15 -> 7 sides roughly halves "
        "the accidental flips per target page)",
    )
    assert results[15] > results[7]
    assert 1.3 < ratio < 3.5
