"""Figure 7: the training-loss curve of CFT+BR with Bit-Reduction spikes.

Every ``bit_reduction_interval`` iterations the projection snaps weights
back to single-bit changes, causing a loss spike that the subsequent
fine-tuning recovers from; overall the loss still trends down.
"""

import numpy as np

from benchmarks.conftest import record_result
from repro.attacks import AttackConfig, CFTAttack

INTERVAL = 20
ITERATIONS = 80


def test_fig7_bit_reduction_loss_spikes(benchmark, victim_cifar):
    qmodel, _, _, attacker_data = victim_cifar

    def run():
        snapshot = qmodel.flat_int8()
        config = AttackConfig(
            target_class=2,
            iterations=ITERATIONS,
            n_flip_budget=4,
            bit_reduction_interval=INTERVAL,
            batch_size=64,
            epsilon=0.01,
            update_rule="sign",
            step_quanta=16.0,
            seed=0,
        )
        attack = CFTAttack(config, bit_reduction=True, strategy="sgd")
        result = attack.run(qmodel, attacker_data)
        qmodel.load_flat_int8(snapshot)  # restore the shared victim
        return result.loss_history

    losses = benchmark.pedantic(run, rounds=1, iterations=1)
    losses = np.asarray(losses)

    spike_points = list(range(INTERVAL, ITERATIONS, INTERVAL))
    lines = [f"iterations: {len(losses)}, bit reduction every {INTERVAL}"]
    for t in spike_points:
        lines.append(
            f"  iter {t:>3}: loss before BR {losses[t - 1]:.3f} -> after BR {losses[t]:.3f}"
        )
    lines.append(f"first-10 mean {losses[:10].mean():.3f} -> last-10 mean {losses[-10:].mean():.3f}")
    record_result("fig7_loss_curve", "\n".join(lines))

    # Shape: projections cause upward jumps at the BR boundaries...
    jumps = [losses[t] - losses[t - 1] for t in spike_points]
    assert max(jumps) > 0, "expected at least one visible bit-reduction spike"
    # ...while the overall trend is downward.
    assert losses[-10:].mean() < losses[:10].mean()
