"""Figures 9 and 10 + Eq. 1/2: target-page probability analysis.

Fig. 9: P(find a target page among N) for k+l in {1, 2, 3} on device K1 --
2200 pages suffice for 99.99 % at one bit per page, while the same pages
give ~2 % at two bits and ~0.006 % at three.
Fig. 10: the same curve across devices -- even the least flippy chips reach
P ~= 1 for a single-bit offset given enough pages.
"""

import pytest

from benchmarks.conftest import record_result
from repro.analysis import (
    monte_carlo_target_page_probability,
    target_page_probability,
    target_page_probability_approx,
)
from repro.rowhammer import DEVICE_PROFILES

PAGE_BITS = 32_768


def test_fig9_probability_vs_offsets(benchmark):
    def run():
        flips = DEVICE_PROFILES["K1"].flips_per_page
        ns = [1, 10, 100, 1000, 2200, 10_000, 32_768]
        return {
            offsets: [target_page_probability_approx(offsets, flips, n) for n in ns]
            for offsets in (1, 2, 3)
        }, [1, 10, 100, 1000, 2200, 10_000, 32_768]

    curves, ns = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'N pages':>8} {'k+l=1':>10} {'k+l=2':>10} {'k+l=3':>12}"]
    for i, n in enumerate(ns):
        lines.append(
            f"{n:>8} {curves[1][i]:>10.6f} {curves[2][i]:>10.6f} {curves[3][i]:>12.8f}"
        )
    record_result("fig9_probability_vs_offsets", "\n".join(lines))

    # Paper anchors for K1: 2200 pages -> 99.99 % for 1 offset, ~2 % for 2,
    # ~0.006 % for 3.
    at_2200 = {offsets: curves[offsets][ns.index(2200)] for offsets in (1, 2, 3)}
    # Paper quotes 99.99 %; Eq. 2 with Table I's K1 rate gives 99.89 %.
    assert at_2200[1] > 0.99
    assert at_2200[2] == pytest.approx(0.02, abs=0.015)
    assert at_2200[3] == pytest.approx(6e-5, abs=6e-5)
    # Monotone in N for every k+l.
    for offsets in (1, 2, 3):
        assert all(a <= b + 1e-12 for a, b in zip(curves[offsets], curves[offsets][1:]))


def test_fig10_probability_across_devices(benchmark):
    def run():
        ns = [100, 1000, 10_000, 32_768]
        return {
            name: [
                target_page_probability_approx(1, profile.flips_per_page, n) for n in ns
            ]
            for name, profile in DEVICE_PROFILES.items()
        }, ns

    curves, ns = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'DRAM':<6}" + "".join(f" N={n:>6}" for n in ns)]
    for name in sorted(curves):
        lines.append(f"{name:<6}" + "".join(f" {p:>8.4f}" for p in curves[name]))
    record_result("fig10_probability_across_devices", "\n".join(lines))

    # Even the least flippy device (B1, 1.05 flips/page) approaches 1 with a
    # full 128 MB profile; flippier devices get there much sooner.
    assert curves["B1"][-1] > 0.6
    assert curves["K1"][-1] > 0.999
    assert curves["K1"][0] > curves["B1"][0]


def test_eq1_eq2_monte_carlo_cross_check(benchmark):
    """Eq. 1 against direct simulation in a dense (testable) regime."""

    def run():
        formula = target_page_probability(1, 1, 32, 32, 40, page_bits=2048)
        empirical = monte_carlo_target_page_probability(
            1, 1, n_up=32, n_down=32, num_pages=40, trials=300, page_bits=2048, rng=0
        )
        return formula, empirical

    formula, empirical = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "eq1_monte_carlo",
        f"Eq.1 closed form: {formula:.4f}\nMonte-Carlo (300): {empirical:.4f}",
    )
    assert empirical == pytest.approx(formula, abs=0.07)
