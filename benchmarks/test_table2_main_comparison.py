"""Table II: the headline comparison -- BadNet/FT/TBT/CFT/CFT+BR, offline
and online, on CIFAR-like victims.

Qualitative shape that must hold (and holds in the paper):

- BadNet needs orders of magnitude more bit flips than CFT+BR offline.
- FT and TBT concentrate their flips in the last layer's page.
- Online, the baselines' r_match collapses (< 10 %) and their ASR with it,
  while CFT+BR realizes (essentially) all its flips with r_match ~100 %.
- CFT+BR's online ASR is the highest of all methods by a wide margin.
"""

import os

import pytest

from benchmarks.conftest import record_result
from repro.core.experiment import format_table2, run_method_comparison

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small") == "full"

MODELS = ["resnet20"] + (["resnet32", "resnet18"] if FULL_SCALE else [])


@pytest.mark.parametrize("model_name", MODELS)
def test_table2_cifar(benchmark, scale, model_name):
    rows = benchmark.pedantic(
        lambda: run_method_comparison(model_name, dataset="cifar10", scale=scale),
        rounds=1,
        iterations=1,
    )
    record_result(f"table2_{model_name}", format_table2(rows))

    by_method = {row["method"]: row for row in rows}

    # Offline flip-count ordering: unconstrained >> constrained.
    assert by_method["BadNet"]["offline_n_flip"] > 20 * by_method["CFT+BR"]["offline_n_flip"]
    assert by_method["FT"]["offline_n_flip"] > by_method["CFT+BR"]["offline_n_flip"]

    # Online realizability: CFT+BR ~100 %, baselines collapse.
    assert by_method["CFT+BR"]["r_match"] > 95.0
    for baseline in ("BadNet", "FT", "TBT"):
        assert by_method[baseline]["r_match"] < 10.0, baseline

    # Online ASR: CFT+BR wins by a wide margin.
    cftbr_asr = by_method["CFT+BR"]["online_asr"]
    for baseline in ("BadNet", "FT", "TBT", "CFT"):
        assert cftbr_asr > by_method[baseline]["online_asr"], baseline

    # Stealth: online TA of CFT+BR stays near the base accuracy (within the
    # paper's observed ~3 % band, scaled).
    assert by_method["CFT+BR"]["online_ta"] > by_method["CFT+BR"]["offline_ta"] - 10.0


@pytest.mark.skipif(not FULL_SCALE, reason="ImageNet-like victims run at REPRO_BENCH_SCALE=full")
@pytest.mark.parametrize("model_name", ["resnet34", "resnet50"])
def test_table2_imagenet(benchmark, scale, model_name):
    rows = benchmark.pedantic(
        lambda: run_method_comparison(
            model_name,
            dataset="imagenet",
            scale=scale,
            methods=("TBT", "CFT", "CFT+BR"),
        ),
        rounds=1,
        iterations=1,
    )
    record_result(f"table2_{model_name}_imagenet", format_table2(rows))
    by_method = {row["method"]: row for row in rows}
    assert by_method["CFT+BR"]["r_match"] > 95.0
    assert by_method["CFT+BR"]["online_asr"] >= by_method["TBT"]["online_asr"]
