"""Figure 4: released-frame order vs the weight file's page placement.

After the attacker releases its frames, the FILO per-CPU frame cache hands
the victim's file pages the frames in reverse release order: the *first*
file pages land on the *last* released frames -- the exact anti-diagonal the
paper's Figure 4 plots.
"""

import numpy as np

from benchmarks.conftest import record_result
from repro.memory.dram import DRAMArray
from repro.memory.geometry import DRAMGeometry, PAGE_FRAME_SIZE
from repro.memory.mmap import OSMemoryModel

FILE_PAGES = 64


def test_fig4_reversed_placement(benchmark):
    def run():
        geometry = DRAMGeometry(num_banks=8, rows_per_bank=256, row_size_bytes=8192)
        os_model = OSMemoryModel(DRAMArray(geometry, 0.0, seed=0), rng=4)
        buffer = os_model.mmap_anonymous(FILE_PAGES)
        release_order = [buffer.frames[p] for p in range(FILE_PAGES)]
        for page in range(FILE_PAGES):
            os_model.munmap_page(buffer, page)
        os_model.register_file("weights.bin", b"\x00" * (FILE_PAGES * PAGE_FRAME_SIZE))
        mapping = os_model.mmap_file("weights.bin")
        placement = [mapping.frame_of(p) for p in range(FILE_PAGES)]
        return release_order, placement

    release_order, placement = benchmark.pedantic(run, rounds=1, iterations=1)

    pairs = list(zip(range(FILE_PAGES), placement))
    lines = ["file_page -> physical_frame (first 8 / last 8)"]
    for page, frame in pairs[:8] + pairs[-8:]:
        lines.append(f"  {page:>3} -> {frame}")
    record_result("fig4_page_mapping", "\n".join(lines))

    # The anti-diagonal: placement is exactly the reversed release order.
    assert placement == list(reversed(release_order))
    # Perfect negative rank correlation, as in the paper's scatter plot.
    releases = {frame: i for i, frame in enumerate(release_order)}
    ranks = np.array([releases[f] for f in placement])
    corr = np.corrcoef(np.arange(FILE_PAGES), ranks)[0, 1]
    assert corr < -0.999
