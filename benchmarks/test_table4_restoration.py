"""Table IV / Appendix D: restoring BadNet's parameters kills its backdoor.

Unconstrained fine-tuning spreads the backdoor across all parameters;
restoring even 1 % of the (least-modified) weights noticeably degrades ASR
while TA recovers toward the base accuracy -- the motivation for putting the
constraints *inside* the training loop.
"""


from benchmarks.conftest import record_result
from repro.attacks import AttackConfig, BadNetAttack, restore_parameters_experiment

KEEP_FRACTIONS = (1.0, 0.99, 0.9, 0.8, 0.7, 0.5)


def test_table4_badnet_restoration(benchmark, victim_cifar, scale):
    qmodel, _, test_data, attacker_data = victim_cifar

    def run():
        snapshot = qmodel.flat_int8()
        # BadNet is plain unconstrained fine-tuning; at this scale a small
        # learning rate is needed for it to build a backdoor instead of
        # destroying the model outright.
        config = AttackConfig(
            target_class=2,
            iterations=scale.attack_iterations,
            learning_rate=0.002,
            epsilon=0.01,
            seed=0,
        )
        offline = BadNetAttack(config).run(qmodel, attacker_data)
        points = restore_parameters_experiment(
            qmodel, offline, test_data, target_class=2, keep_fractions=KEEP_FRACTIONS
        )
        qmodel.load_flat_int8(snapshot)
        return offline, points

    offline, points = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"BadNet offline N_flip = {offline.n_flip}",
             f"{'Modification %':>15} {'TA %':>8} {'ASR %':>8}"]
    for point in points:
        lines.append(
            f"{point.modification_percent:>15.0f} {100*point.test_accuracy:>8.2f} "
            f"{100*point.attack_success_rate:>8.2f}"
        )
    record_result("table4_badnet_restoration", "\n".join(lines))

    full, *_, half = points
    # Shape: ASR decays as modifications are restored...
    assert half.attack_success_rate <= full.attack_success_rate
    # ...while TA recovers (or at least does not get worse).
    assert half.test_accuracy >= full.test_accuracy - 0.02
    # The paper's qualitative claim: at 50 % modifications the backdoor is
    # far below its full strength.
    if full.attack_success_rate > 0.5:
        assert half.attack_success_rate < 0.8 * full.attack_success_rate
