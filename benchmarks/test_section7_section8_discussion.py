"""Section VII (attack time / stealth vs prior work) and Section VIII
(huge-page fragmentation) discussion experiments."""


from benchmarks.conftest import record_result
from repro.analysis.attack_time import estimate_attack_time, related_work_comparison
from repro.memory.geometry import DRAMGeometry
from repro.memory.hugepages import expected_flips_in_huge_page, fragment_huge_page


def test_section7_attack_time_and_stealth(benchmark):
    rows = benchmark.pedantic(lambda: related_work_comparison(n_flip=10), rounds=1, iterations=1)

    lines = [f"{'method':<24} {'s/row':>7} {'online s':>9} {'clean acc':>10} {'stealthy':>9}"]
    for row in rows:
        lines.append(
            f"{row['method']:<24} {row['seconds_per_row']:>7.3f} "
            f"{row['online_seconds']:>9.2f} {row['post_attack_clean_accuracy']:>10.0%} "
            f"{str(row['stealthy']):>9}"
        )
    ours = estimate_attack_time(n_flip=10, n_sides=7)
    lines.append(
        f"profiling (offline, 128 MB): {ours.profiling_minutes:.0f} min; "
        f"total online for 10 flips: {ours.online_seconds:.1f} s"
    )
    record_result("section7_attack_time", "\n".join(lines))

    by_method = {row["method"]: row for row in rows}
    # We pay more per row (7-sided 400 ms vs DeepHammer's 190 ms double-sided)
    # because TRR forces n-sided patterns...
    assert (
        by_method["CFT+BR (this work)"]["seconds_per_row"]
        > by_method["DeepHammer"]["seconds_per_row"]
    )
    # ...but are the only stealthy attack (clean accuracy preserved).
    assert by_method["CFT+BR (this work)"]["stealthy"]


def test_section8_huge_page_fragmentation(benchmark):
    def run():
        results = {}
        for banks in (16, 64, 256):
            geometry = DRAMGeometry(num_banks=banks, rows_per_bank=4096, row_size_bytes=8192)
            results[banks] = fragment_huge_page(geometry)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'banks':>6} {'chunks':>7} {'rows/chunk':>11} {'1-row?':>7}"]
    for banks, frag in sorted(results.items()):
        lines.append(
            f"{banks:>6} {frag.num_chunks:>7} {frag.rows_per_chunk:>11} "
            f"{str(frag.single_row_chunks):>7}"
        )
    lines.append(
        f"profiling granularity: 512 x 4KB pages per 2MB huge page; "
        f"expected usable flips at 1 flip/page: {expected_flips_in_huge_page(1.0):.0f}"
    )
    record_result("section8_huge_pages", "\n".join(lines))

    # Paper's example: 64 banks -> 64 chunks of 4 rows.
    assert results[64].num_chunks == 64
    assert results[64].rows_per_chunk == 4
    # More banks (multi-DIMM/rank) shrink chunks to single rows.
    assert results[256].single_row_chunks
