"""End-to-end attack: offline optimization + online Rowhammer injection.

Reproduces the paper's full flow (Section IV) against the simulated memory
system: DRAM profiling, CFT+BR, page-cache massaging and n-sided hammering.

    python examples/end_to_end_attack.py
"""

import time

from repro.attacks import AttackConfig, CFTAttack
from repro.core import BackdoorPipeline, MemoryConfig, PipelineConfig, pretrained_quantized_model

TARGET_CLASS = 2


def main() -> None:
    print("== Victim model ==")
    qmodel, _, test_data, attacker_data = pretrained_quantized_model(
        "resnet20", dataset="cifar10", width=0.25, epochs=12, seed=0
    )
    print(f"   {qmodel.total_params:,} int8 weights "
          f"({(qmodel.total_params + 4095) // 4096} memory pages)")

    print("== Memory system: DDR4 device K1 (Table I), 16 MB attacker buffer ==")
    pipeline = BackdoorPipeline(
        PipelineConfig(memory=MemoryConfig(device="K1", attacker_buffer_pages=4096))
    )
    start = time.time()
    profile = pipeline.profile_memory()
    print(f"   profiled {profile.num_frames} pages in {time.time() - start:.0f}s wall "
          f"(paper-equivalent {profile.estimated_minutes():.1f} min): "
          f"{profile.num_flips} flips, {profile.flip_fraction:.4%} of cells")

    print("== Offline + online attack ==")
    config = AttackConfig(target_class=TARGET_CLASS, n_flip_budget=5, iterations=120, seed=0)
    result = pipeline.run(
        CFTAttack(config, bit_reduction=True),
        qmodel,
        attacker_data,
        test_data,
        target_class=TARGET_CLASS,
    )

    row = result.as_row()
    print(f"   offline: N_flip={row['offline_n_flip']:.0f}  "
          f"TA={row['offline_ta']:.1f}%  ASR={row['offline_asr']:.1f}%")
    print(f"   online:  N_flip={row['online_n_flip']:.0f}  "
          f"TA={row['online_ta']:.1f}%  ASR={row['online_asr']:.1f}%  "
          f"r_match={row['r_match']:.2f}%")
    print(f"   placement verified: {result.online.placement_verified}, "
          f"hammering took {result.online.hammer_seconds:.1f}s of simulated wall clock")


if __name__ == "__main__":
    main()
