"""Feasibility analysis: when is a Rowhammer bit-flip plan realizable?

Reproduces the paper's probability analysis (Eq. 1/2, Figures 9/10) and the
conclusions it drives: a plan needing one flip per page is essentially
always realizable on a profiled buffer; two or more flips in the same page
essentially never are.

    python examples/probability_analysis.py
"""

from repro.analysis import (
    monte_carlo_target_page_probability,
    target_page_probability,
    target_page_probability_approx,
)
from repro.rowhammer import DEVICE_PROFILES


def main() -> None:
    print("== Eq. 2 with the paper's reference chip (34 flips/page, 128 MB) ==")
    for offsets in (1, 2, 3):
        p = target_page_probability_approx(offsets, 34, 32_768)
        print(f"   {offsets} required offset(s) in a page: P = {p:.6f}")
    print("   -> only single-flip pages are realistic (the C2 constraint)")

    print("== Eq. 1 (direction-aware) vs Eq. 2 (merged pools) ==")
    exact = target_page_probability(1, 1, 17, 17, 1000)
    approx = target_page_probability_approx(2, 34, 1000)
    print(f"   exact {exact:.2e} vs approx {approx:.2e} "
          "(the reduction is a small constant factor optimistic)")

    print("== Monte-Carlo cross-check of Eq. 1 ==")
    formula = target_page_probability(1, 1, 32, 32, 40, page_bits=2048)
    empirical = monte_carlo_target_page_probability(
        1, 1, n_up=32, n_down=32, num_pages=40, trials=500, page_bits=2048, rng=0
    )
    print(f"   closed form {formula:.4f} vs simulated {empirical:.4f}")

    print("== Fig. 10: pages needed for P > 0.99 at one offset, per device ==")
    for name in sorted(DEVICE_PROFILES):
        flips = DEVICE_PROFILES[name].flips_per_page
        pages, p = 1, 0.0
        while p <= 0.99 and pages < 2**22:
            pages *= 2
            p = target_page_probability_approx(1, flips, pages)
        mb = pages * 4096 / (1024 * 1024)
        print(f"   {name:<4} ({flips:>6.2f} flips/page): ~{pages:>8} pages ({mb:>8.1f} MB)")


if __name__ == "__main__":
    main()
