"""Quickstart: train a victim, inject a backdoor offline, check TA/ASR.

Runs the offline phase only (no memory simulation) at a small scale so it
finishes in a few minutes on a laptop CPU:

    python examples/quickstart.py
"""

import time

from repro.analysis import evaluate_attack
from repro.attacks import AttackConfig, CFTAttack
from repro.core import pretrained_quantized_model
from repro.core.training import evaluate_accuracy

TARGET_CLASS = 2


def main() -> None:
    print("== 1. Train (or load cached) victim: ResNet-20 on synthetic CIFAR-10 ==")
    start = time.time()
    qmodel, _, test_data, attacker_data = pretrained_quantized_model(
        "resnet20", dataset="cifar10", width=0.25, epochs=12, seed=0
    )
    base_accuracy = evaluate_accuracy(qmodel.module, test_data)
    print(f"   victim ready in {time.time() - start:.0f}s, "
          f"{qmodel.total_params:,} weights, base accuracy {base_accuracy:.1%}")

    print("== 2. Offline attack: CFT+BR (Algorithm 1) ==")
    config = AttackConfig(
        target_class=TARGET_CLASS,
        n_flip_budget=5,
        iterations=120,
        epsilon=0.01,
        seed=0,
    )
    attack = CFTAttack(config, bit_reduction=True)
    start = time.time()
    result = attack.run(qmodel, attacker_data)
    print(f"   found {result.n_flip} bit flips in {time.time() - start:.0f}s")

    print("== 3. Evaluate the backdoored model ==")
    evaluation = evaluate_attack(qmodel.module, test_data, result.trigger, TARGET_CLASS)
    print(f"   test accuracy (clean inputs):   {evaluation.test_accuracy:.1%}")
    print(f"   attack success rate (trigger):  {evaluation.attack_success_rate:.1%}")
    print(f"   bits flipped: {result.n_flip} of {qmodel.total_bits:,}")


if __name__ == "__main__":
    main()
