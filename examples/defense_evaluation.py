"""Evaluate the Section VI countermeasures against a backdoored model.

Shows each defense's verdict on the same CFT+BR attack: which ones detect
or undo it, at what cost — mirroring the paper's conclusions.

    python examples/defense_evaluation.py
"""

from repro.analysis import evaluate_attack
from repro.attacks import AttackConfig, CFTAttack
from repro.core import pretrained_quantized_model
from repro.defenses import (
    DeepDyveGuard,
    RadarDetector,
    WeightEncodingDetector,
    WeightReconstructionDefense,
    encoding_overhead_estimate,
)
from repro.defenses.binarization import binarized_page_count

TARGET_CLASS = 2


def main() -> None:
    qmodel, _, test_data, attacker_data = pretrained_quantized_model(
        "resnet20", dataset="cifar10", width=0.25, epochs=12, seed=0
    )
    # A second, independent instance of the same checkpoint: the "clean
    # checker" DeepDyve deploys alongside the victim.
    checker_qmodel, _, _, _ = pretrained_quantized_model(
        "resnet20", dataset="cifar10", width=0.25, epochs=12, seed=0
    )

    # Fit every detector on the clean deployed weights (deployment time).
    radar_msb = RadarDetector(qmodel, protected_bits=(7,))
    encoder = WeightEncodingDetector(qmodel, rng=0)
    reconstruction = WeightReconstructionDefense(qmodel, num_sigmas=3.0)

    print("== Run the CFT+BR attack ==")
    config = AttackConfig(target_class=TARGET_CLASS, n_flip_budget=5, iterations=120, seed=0)
    result = CFTAttack(config, bit_reduction=True).run(qmodel, attacker_data)
    before = evaluate_attack(qmodel.module, test_data, result.trigger, TARGET_CLASS)
    print(f"   N_flip={result.n_flip}  TA={before.test_accuracy:.1%}  "
          f"ASR={before.attack_success_rate:.1%}")

    print("== RADAR (MSB checksums) ==")
    report = radar_msb.check(qmodel)
    print(f"   detected: {report.detected} "
          f"(attack can avoid protected bits via AttackConfig.forbidden_bits)")

    print("== Weight encoding (protects only the largest layer) ==")
    flagged = encoder.detect(qmodel)
    overhead = encoding_overhead_estimate(qmodel.total_params)
    print(f"   flagged layers: {flagged or 'none'}; coverage "
          f"{encoder.coverage(qmodel):.0%}; full-model cost would be "
          f"{overhead.storage_overhead_percent:.0f}% extra storage")

    print("== DeepDyve (checker model, assumes transient faults) ==")
    guard = DeepDyveGuard(deployed=qmodel.module, checker=checker_qmodel.module)
    stamped = result.trigger.apply(test_data.images[:64])
    predictions, stats = guard.predict(stamped)
    hijacked = (predictions == TARGET_CLASS).mean()
    print(f"   alarms raised: {stats.alarms}/64, yet trigger inputs are still "
          f"classified as the target {hijacked:.0%} of the time -- the re-run "
          "consults the same corrupted page-cache weights (fault is persistent)")

    print("== Weight reconstruction (recovery) ==")
    clipped = reconstruction.reconstruct(qmodel)
    after = evaluate_attack(qmodel.module, test_data, result.trigger, TARGET_CLASS)
    print(f"   clipped {clipped} weights; ASR {before.attack_success_rate:.1%} "
          f"-> {after.attack_success_rate:.1%} (unaware attacker)")
    print("   (a defense-aware attacker re-runs the attack with the "
          "reconstruction in the loop and keeps only surviving flips)")

    print("== Binarization-aware training (prevention) ==")
    pages_int8 = (qmodel.total_params + 4095) // 4096
    pages_bin = binarized_page_count(qmodel.module)
    print(f"   weight file shrinks {pages_int8} -> {pages_bin} pages, capping "
          f"N_flip at {pages_bin} (constraint C2) at the price of accuracy")


if __name__ == "__main__":
    main()
