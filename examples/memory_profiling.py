"""Memory profiling walkthrough: side channels, fault maps, probabilities.

Reproduces the offline memory phase (Section IV-A1/2 and Appendices B/C)
without any model: SPOILER contiguity detection, row-conflict bank grouping,
double- vs n-sided profiling, and the Eq. 2 target-page probabilities.

    python examples/memory_profiling.py
"""

import numpy as np

from repro.analysis import target_page_probability_approx
from repro.memory import DRAMArray, DRAMGeometry, OSMemoryModel, RowConflictChannel, SpoilerChannel
from repro.rowhammer import HammerEngine, MemoryProfiler, get_profile


def main() -> None:
    geometry = DRAMGeometry(num_banks=16, rows_per_bank=512, row_size_bytes=8192)
    device = get_profile("K1")
    dram = DRAMArray(geometry, flips_per_page_mean=device.flips_per_page, seed=0)
    os_model = OSMemoryModel(dram, rng=1)

    print("== Step 1: find physically contiguous memory with SPOILER ==")
    buffer = os_model.mmap_anonymous(512)
    spoiler = SpoilerChannel()
    times = spoiler.measure(buffer, rng=2)
    runs = spoiler.find_contiguous_runs(times)
    print(f"   {len(spoiler.detect_peaks(times))} timing peaks; "
          f"contiguous runs (start, length): {runs[:3]}")

    print("== Step 2: group addresses into banks via row-buffer conflicts ==")
    conflict = RowConflictChannel(geometry)
    frames = [buffer.frames[p] for p in range(0, 64, 2)]
    groups = conflict.bank_partition(frames, rng=3)
    sizes = sorted((len(v) for v in groups.values()), reverse=True)
    print(f"   {len(groups)} bank groups over {len(frames)} frames, sizes {sizes[:8]}")

    print("== Step 3: profile for flippable cells ==")
    engine = HammerEngine(dram, device)
    print(f"   double-sided effective on this device: {engine.double_sided_effective()} "
          f"(DDR4 TRR blocks 2-sided; n-sided bypasses it)")
    profiler = MemoryProfiler(os_model, engine)
    profile = profiler.profile_mapping(buffer, n_sides=7)
    up, down = profile.direction_counts()
    print(f"   {profile.num_flips} flips over {profile.num_frames} pages "
          f"({profile.avg_flips_per_page:.1f}/page, {profile.flip_fraction:.4%} of cells)")
    print(f"   directions: {up} are 0->1, {down} are 1->0")
    print(f"   paper-equivalent profiling time: {profile.estimated_minutes():.1f} minutes")

    print("== Step 4: Eq. 2 -- why one flip per page is the realistic limit ==")
    for offsets in (1, 2, 3):
        p = target_page_probability_approx(offsets, 34, 32_768)
        print(f"   P(find target page | {offsets} required offsets) = {p:.6f}")


if __name__ == "__main__":
    main()
